"""Pluggable F_p backends: bit-exactness, selection order, Montgomery internals.

Every backend must be a pure *representation* choice: for any catalog modulus
and any operation, the canonical value it produces equals the pure-Python
reference's.  These tests sweep the Fp-level ops over every catalog family
(cheap -- only the family equations are evaluated, not the full curve build),
check the Montgomery round-trip and CIOS internals at several limb widths,
exercise the full pairing end-to-end per backend on the toy curves, and pin
down the selection order (explicit argument > ``configure_fp_backend`` pin >
``FINESSE_FP_BACKEND`` > catalog hint > python).  gmpy2 coverage skips cleanly
when the optional package is absent.
"""

import random

import pytest

from repro.curves.catalog import CURVE_SPECS, get_curve
from repro.curves.families import get_family
from repro.errors import FieldError
from repro.fields.backends import (
    BACKEND_ENV,
    MontgomeryOps,
    available_backends,
    configure_fp_backend,
    get_ops,
    gmpy2_available,
    normalise_backend,
    resolve_backend,
)
from repro.fields.fp import PrimeField
from repro.fields.sqrt import field_sqrt
from repro.pairing.ate import optimal_ate_pairing

#: Backends under test besides the reference (gmpy2 auto-skips when absent).
ALT_BACKENDS = [name for name in available_backends() if name != "python"]

TOY_CURVES = ("TOY-BN42", "TOY-BLS12-54", "TOY-BLS24-79")


def _catalog_primes():
    """(name, p) for every catalog family -- no curve build, just the equations."""
    return [
        (spec.name, get_family(spec.family).instantiate(spec.u).p)
        for spec in CURVE_SPECS.values()
    ]


CATALOG_PRIMES = _catalog_primes()


@pytest.fixture(autouse=True)
def _no_backend_pin():
    """Each test starts and ends without a process-wide backend pin."""
    configure_fp_backend(None)
    yield
    configure_fp_backend(None)


# ---------------------------------------------------------------------------
# Bit-exactness against the python reference, every catalog family
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize(
    "curve_name,p", CATALOG_PRIMES, ids=[name for name, _ in CATALOG_PRIMES]
)
def test_backend_bit_exact_on_catalog_prime(backend, curve_name, p):
    ref = PrimeField(p, backend="python")
    alt = PrimeField(p, backend=backend)
    assert alt.backend == backend and ref.backend == "python"
    assert ref == alt                       # same modulus => same field

    rng = random.Random(p & 0xFFFFFFFF)
    samples = [0, 1, p - 1] + [rng.randrange(p) for _ in range(5)]
    for a in samples:
        b = rng.randrange(1, p)
        x_r, y_r = ref(a), ref(b)
        x_a, y_a = alt(a), alt(b)
        assert x_a.value == x_r.value == a % p
        assert (x_a + y_a).value == (x_r + y_r).value
        assert (x_a - y_a).value == (x_r - y_r).value
        assert (x_a * y_a).value == (x_r * y_r).value
        assert (-x_a).value == (-x_r).value
        assert x_a.square().value == x_r.square().value
        assert x_a.mul_small(3).value == x_r.mul_small(3).value
        assert x_a.mul_small(-7).value == x_r.mul_small(-7).value
        assert y_a.inverse().value == y_r.inverse().value
        exponent = rng.randrange(1 << 64)
        assert (y_a ** exponent).value == (y_r ** exponent).value
        assert (y_a ** -3).value == (y_r ** -3).value
        # Cross-backend equality compares canonical values.
        assert x_a == x_r and y_a == y_r
        assert hash(x_a) == hash(x_r)
    # Square roots agree too (Tonelli-Shanks is derandomised per field).
    square_a, square_r = alt(samples[-1]).square(), ref(samples[-1]).square()
    assert field_sqrt(square_a).value == field_sqrt(square_r).value
    # Predicates see through the representation.
    assert alt(0).is_zero() and alt(1).is_one() and not alt(1).is_zero()
    with pytest.raises(FieldError):
        alt(0).inverse()


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("curve_name", TOY_CURVES)
def test_pairing_bit_exact_across_backends(backend, curve_name):
    """Full pipeline per family: curve build, tower, pairing -- identical values."""
    ref = get_curve(curve_name, fp_backend="python")
    alt = get_curve(curve_name, fp_backend=backend)
    assert ref is not alt and alt.fp_backend == backend
    # The construction is deterministic from the modulus: same generators.
    assert alt.g1_generator.x.value == ref.g1_generator.x.value
    assert alt.g2_generator.x.to_base_coeffs() == ref.g2_generator.x.to_base_coeffs()

    rng_ref, rng_alt = random.Random(0xE5A), random.Random(0xE5A)
    p_ref, q_ref = ref.random_g1(rng_ref), ref.random_g2(rng_ref)
    p_alt, q_alt = alt.random_g1(rng_alt), alt.random_g2(rng_alt)
    e_ref = optimal_ate_pairing(ref, p_ref, q_ref)
    e_alt = optimal_ate_pairing(alt, p_alt, q_alt)
    assert e_alt.to_base_coeffs() == e_ref.to_base_coeffs()


# ---------------------------------------------------------------------------
# Montgomery internals
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("limb_bits", [16, 32, 64])
def test_montgomery_round_trip_and_cios(limb_bits):
    p = dict(CATALOG_PRIMES)["BLS12-381"]
    ops = MontgomeryOps(p, limb_bits=limb_bits)
    assert ops.n_limbs == -(-p.bit_length() // limb_bits)
    # n' satisfies the defining congruence p * (-n') = 1 mod 2^W.
    assert (ops.p_limbs[0] * ops.n0) % (1 << limb_bits) == (1 << limb_bits) - 1
    assert ops.decode(ops.r1) == 1          # encode(1) is R mod p
    rng = random.Random(limb_bits)
    for _ in range(16):
        x = rng.randrange(p)
        raw = ops.encode(x)
        assert 0 <= raw < p                 # residues stay fully reduced
        assert ops.decode(raw) == x
        y = rng.randrange(p)
        assert ops.decode(ops.mul(ops.encode(x), ops.encode(y))) == (x * y) % p


def test_montgomery_residues_stay_lazy_through_the_tower():
    """Tower ops never leave Montgomery form; decoding happens at the boundary."""
    curve = get_curve("TOY-BN42", fp_backend="montgomery")
    fp = curve.tower.fp
    ops = fp._ops
    x = fp(12345)
    assert x.raw == ops.encode(12345) != 12345 % fp.p
    rng = random.Random(3)
    value = curve.tower.full_field.random(rng)
    squared = value.square()
    # to_base_coeffs decodes at the boundary: canonical ints, not residues.
    coeffs = squared.to_base_coeffs()
    assert all(isinstance(c, int) and 0 <= c < fp.p for c in coeffs)
    # The canonical view matches the python-backend tower bit for bit.
    ref_field = get_curve("TOY-BN42", fp_backend="python").tower.full_field
    ref_value = ref_field.from_base_coeffs(value.to_base_coeffs())
    assert ref_value.square().to_base_coeffs() == squared.to_base_coeffs()


# ---------------------------------------------------------------------------
# Selection order: explicit > pin > env > hint > python
# ---------------------------------------------------------------------------

def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "montgomery")
    assert PrimeField(10007).backend == "montgomery"
    monkeypatch.delenv(BACKEND_ENV)
    assert PrimeField(10007).backend == "python"


def test_unknown_backend_rejected(monkeypatch):
    with pytest.raises(FieldError):
        PrimeField(10007, backend="fixnum")
    with pytest.raises(FieldError):
        configure_fp_backend("fixnum")
    monkeypatch.setenv(BACKEND_ENV, "fixnum")
    with pytest.raises(FieldError):
        PrimeField(10007)


def test_api_pin_overrides_env(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "python")
    assert configure_fp_backend("montgomery") == "montgomery"
    assert PrimeField(10007).backend == "montgomery"
    # Dropping the pin falls back to the environment.
    assert configure_fp_backend(None) == "python"
    assert PrimeField(10007).backend == "python"


def test_explicit_argument_overrides_pin(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    configure_fp_backend("montgomery")
    assert PrimeField(10007, backend="python").backend == "python"
    assert get_curve("TOY-BN42", fp_backend="python").fp_backend == "python"


def test_catalog_hints(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    fast = "gmpy2" if gmpy2_available() else "python"
    # Paper-scale entries hint `fast`; toy entries default to the reference.
    assert resolve_backend(hint=CURVE_SPECS["BLS12-381"].fp_backend) == fast
    assert get_curve("TOY-BN42").fp_backend == "python"
    # A process-wide pin beats the hint.
    configure_fp_backend("montgomery")
    assert resolve_backend(hint="fast") == "montgomery"


def test_fast_pseudo_backend_resolution():
    expected = "gmpy2" if gmpy2_available() else "python"
    assert normalise_backend("fast") == expected
    assert normalise_backend("MONTGOMERY") == "montgomery"


def test_ops_contexts_are_memoised():
    assert get_ops("python", 10007) is get_ops("python", 10007)
    assert get_ops("python", 10007) is not get_ops("montgomery", 10007)


def test_curves_cached_per_backend():
    a = get_curve("TOY-BN42", fp_backend="python")
    b = get_curve("TOY-BN42", fp_backend="python")
    c = get_curve("TOY-BN42", fp_backend="montgomery")
    assert a is b and a is not c


# ---------------------------------------------------------------------------
# gmpy2: present => exercised, absent => clean skip + clear error
# ---------------------------------------------------------------------------

@pytest.mark.skipif(gmpy2_available(), reason="gmpy2 is installed")
def test_gmpy2_requested_but_missing_raises_cleanly():
    with pytest.raises(FieldError, match="gmpy2"):
        PrimeField(10007, backend="gmpy2")
    assert "gmpy2" not in available_backends()
    assert normalise_backend("fast") == "python"


@pytest.mark.skipif(not gmpy2_available(), reason="gmpy2 not installed")
def test_gmpy2_listed_when_available():
    assert "gmpy2" in available_backends()
    assert normalise_backend("fast") == "gmpy2"
    field = PrimeField(10007, backend="gmpy2")
    assert field(123).value == 123 and isinstance(field(123).value, int)


# ---------------------------------------------------------------------------
# Primality guard (bugfix): composite "primes" must be rejected
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("composite", [9, 15, 341, 10011, 3 * (2**61 - 1)])
def test_composite_modulus_rejected(composite):
    with pytest.raises(FieldError, match="prime"):
        PrimeField(composite)
