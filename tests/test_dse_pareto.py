"""explore_pareto end to end: determinism, guided search, errors, runner flags."""

import random

import pytest

from repro.dse.engine import ParallelExplorer
from repro.dse.explorer import EMPTY_SPACE_MESSAGE, DesignSpaceExplorer
from repro.dse.objectives import list_objectives, resolve_objective
from repro.dse.search import (
    BUDGET_ENV,
    OBJECTIVES_ENV,
    STRATEGY_ENV,
    default_budget,
    default_objectives,
    default_strategy,
    proxy_design_metrics,
    resolve_strategy,
    validate_budget,
)
from repro.dse.space import DesignPoint, design_points, named_variant_configs
from repro.errors import DSEError
from repro.evaluation.runner import main as runner_main
from repro.hw.presets import figure10_models


@pytest.fixture(scope="module")
def toy_points(toy_bn):
    configs = list(named_variant_configs().values())
    hw_models = figure10_models(toy_bn.params.p.bit_length())[:2]
    return design_points(configs, hw_models)


@pytest.fixture(scope="module")
def full_points(toy_bn):
    """The full Figure 10 toy space the guided-search contract is stated on."""
    configs = list(named_variant_configs().values())
    return design_points(configs, figure10_models(toy_bn.params.p.bit_length()))


# ---------------------------------------------------------------------------
# Determinism: worker count and input order must not matter
# ---------------------------------------------------------------------------

def test_frontier_identical_across_worker_counts(toy_bn, toy_points):
    sequential = ParallelExplorer(toy_bn, workers=1).explore_pareto(
        toy_points, objectives=("throughput", "area"))
    with ParallelExplorer(toy_bn, workers=2, chunk_size=2) as parallel:
        sharded = parallel.explore_pareto(toy_points, objectives=("throughput", "area"))
    assert sharded.frontier == sequential.frontier
    assert sharded.frontier_scores == sequential.frontier_scores
    assert sharded.labels() == sequential.labels()
    assert sharded.extremes == sequential.extremes
    legacy = DesignSpaceExplorer(toy_bn).explore_pareto(
        toy_points, objectives=("throughput", "area"))
    assert legacy.frontier == sequential.frontier
    assert legacy.frontier_scores == sequential.frontier_scores


def test_frontier_invariant_under_input_permutation(toy_bn, toy_points):
    engine = ParallelExplorer(toy_bn, workers=1)
    reference = engine.explore_pareto(toy_points, objectives=("throughput", "area"))
    for seed in range(3):
        shuffled = list(toy_points)
        random.Random(seed).shuffle(shuffled)
        again = engine.explore_pareto(shuffled, objectives=("throughput", "area"))
        assert again.frontier == reference.frontier
        assert again.frontier_scores == reference.frontier_scores
    # Duplicated points collapse to their semantic identity: same frontier,
    # same dominated count over the distinct set.
    doubled = list(toy_points) + list(toy_points)
    dup = engine.explore_pareto(doubled, objectives=("throughput", "area"))
    assert dup.frontier == reference.frontier
    assert dup.total_points == reference.total_points


def test_explore_ranking_breaks_score_ties_by_label(toy_bn, toy_points):
    """Two labels carrying the same design score order deterministically."""
    point = toy_points[0]
    twin_a = DesignPoint(point.variant_config, point.hw, label="tie-b")
    twin_b = DesignPoint(point.variant_config, point.hw, label="tie-a")
    engine = ParallelExplorer(toy_bn, workers=1)
    ranked = engine.explore([twin_a, twin_b], objective="throughput")
    assert [m.label for m in ranked] == ["tie-a", "tie-b"]


# ---------------------------------------------------------------------------
# Guided search: budget and frontier-recovery contract
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("strategy", ["successive_halving", "local"])
def test_guided_strategy_recovers_frontier_within_budget(toy_bn, full_points, strategy):
    engine = ParallelExplorer(toy_bn, workers=1, do_assemble=False)
    exhaustive = engine.explore_pareto(full_points, objectives=("throughput", "area"))
    assert exhaustive.evaluated == exhaustive.total_points == len(full_points)

    guided = engine.explore_pareto(full_points, objectives=("throughput", "area"),
                                   strategy=strategy)
    assert guided.strategy == strategy
    assert guided.evaluated <= len(full_points) // 2
    # The guided frontier contains every exhaustive-frontier point (it may
    # not contain more: its frontier is non-dominated within the evaluated
    # subset, and the exhaustive front dominates everything else).
    assert set(exhaustive.labels()) <= set(guided.labels())
    # A tight explicit budget is respected.
    tight = engine.explore_pareto(full_points, objectives=("throughput", "area"),
                                  strategy=strategy, budget=3)
    assert tight.evaluated <= 3


def test_proxy_metrics_are_deterministic_and_populated(toy_bn, full_points):
    first = [proxy_design_metrics(toy_bn, point) for point in full_points]
    again = [proxy_design_metrics(toy_bn, point) for point in full_points]
    assert first == again
    for proxy in first:
        assert proxy.cycles > 0
        assert proxy.area_mm2 > 0
        assert proxy.power_mw > 0
        assert proxy.throughput_ops > 0


# ---------------------------------------------------------------------------
# Error handling: identical messages in both explorers
# ---------------------------------------------------------------------------

def test_empty_space_raises_identical_dse_error(toy_bn):
    engine = ParallelExplorer(toy_bn, workers=1)
    legacy = DesignSpaceExplorer(toy_bn)
    with pytest.raises(DSEError) as parallel_err:
        engine.best([])
    with pytest.raises(DSEError) as legacy_err:
        legacy.best([])
    assert str(parallel_err.value) == EMPTY_SPACE_MESSAGE
    assert str(legacy_err.value) == EMPTY_SPACE_MESSAGE
    # An explicitly empty pareto sweep reports an empty result, not a crash.
    result = engine.explore_pareto([], objectives=("throughput", "area"))
    assert result.frontier == ()
    assert result.total_points == 0


def test_unknown_objective_identical_in_both_explorers(toy_bn, toy_points):
    engine = ParallelExplorer(toy_bn, workers=1)
    legacy = DesignSpaceExplorer(toy_bn)
    with pytest.raises(DSEError) as parallel_err:
        engine.explore_pareto(toy_points, objectives=("throughput", "bogus"))
    with pytest.raises(DSEError) as legacy_err:
        legacy.explore_pareto(toy_points, objectives=("throughput", "bogus"))
    assert str(parallel_err.value) == str(legacy_err.value)
    assert "unknown objective 'bogus'" in str(parallel_err.value)
    assert "list_objectives" in str(parallel_err.value)


def test_strategy_and_budget_validation(toy_bn, toy_points):
    engine = ParallelExplorer(toy_bn, workers=1)
    with pytest.raises(DSEError, match="unknown search strategy"):
        engine.explore_pareto(toy_points, strategy="annealing")
    for bad in (0, -1, 1.5, True):
        with pytest.raises(DSEError):
            validate_budget(bad)
    assert validate_budget(7) == 7
    assert resolve_strategy("local") is not None


# ---------------------------------------------------------------------------
# Registry and environment defaults
# ---------------------------------------------------------------------------

def test_list_objectives_registry():
    registry = list_objectives()
    for name in ("throughput", "latency", "area", "efficiency", "power",
                 "energy", "throughput_per_watt", "steady_throughput",
                 "service_throughput", "service_p99"):
        assert name in registry
        assert registry[name]                      # every entry documented
        assert resolve_objective(name).name == name


def test_env_defaults(monkeypatch):
    monkeypatch.delenv(OBJECTIVES_ENV, raising=False)
    monkeypatch.delenv(STRATEGY_ENV, raising=False)
    monkeypatch.delenv(BUDGET_ENV, raising=False)
    assert default_objectives() == ("throughput", "area")
    assert default_strategy() == "exhaustive"
    assert default_budget() is None
    monkeypatch.setenv(OBJECTIVES_ENV, "power, energy")
    monkeypatch.setenv(STRATEGY_ENV, "local")
    monkeypatch.setenv(BUDGET_ENV, "5")
    assert default_objectives() == ("power", "energy")
    assert default_strategy() == "local"
    assert default_budget() == 5


# ---------------------------------------------------------------------------
# Runner flags
# ---------------------------------------------------------------------------

def test_runner_objectives_help(capsys, monkeypatch):
    monkeypatch.delenv(OBJECTIVES_ENV, raising=False)
    assert runner_main(["--objectives", "help"]) == 0
    out = capsys.readouterr().out
    for name in list_objectives():
        assert name in out


def test_runner_flag_validation(monkeypatch):
    monkeypatch.delenv(OBJECTIVES_ENV, raising=False)
    monkeypatch.delenv(STRATEGY_ENV, raising=False)
    monkeypatch.delenv(BUDGET_ENV, raising=False)
    with pytest.raises(DSEError, match="unknown objective"):
        runner_main(["--objectives", "throughput,bogus"])
    with pytest.raises(DSEError, match="unknown search strategy"):
        runner_main(["--strategy", "annealing"])
    with pytest.raises(DSEError, match="--budget must be an integer"):
        runner_main(["--budget", "lots"])
    with pytest.raises(DSEError):
        runner_main(["--budget", "0"])
    with pytest.raises(DSEError, match="at least one objective"):
        runner_main(["--objectives", " , "])
