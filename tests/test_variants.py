"""Operator variants: correctness against schoolbook, cost table, configuration."""

import random

import pytest

from repro.errors import FieldError
from repro.fields.fp import PrimeField
from repro.fields.tower import build_extension
from repro.fields.variants import (
    ConcreteStepOps,
    VariantConfig,
    get_variant,
    list_variants,
)


@pytest.fixture(scope="module")
def quadratic_setup():
    fp = PrimeField(10007)
    fp2 = build_extension(fp, 2)
    return fp2, ConcreteStepOps(fp2.non_residue)


@pytest.fixture(scope="module")
def cubic_setup():
    # p = 1 mod 3 so a cubic non-residue exists: use 10009? 10009 % 3 == 1.
    fp = PrimeField(10009)
    fp3 = build_extension(fp, 3)
    return fp3, ConcreteStepOps(fp3.non_residue)


def _random_tuple(field, degree, rng):
    return tuple(field.base.random(rng) for _ in range(degree))


@pytest.mark.parametrize("name", ["schoolbook", "karatsuba"])
def test_mul2_variants_agree(quadratic_setup, name):
    field, ops = quadratic_setup
    rng = random.Random(hash(name) & 0xFFFF)
    reference = get_variant("mul", 2, "schoolbook")
    variant = get_variant("mul", 2, name)
    for _ in range(20):
        a = _random_tuple(field, 2, rng)
        b = _random_tuple(field, 2, rng)
        assert variant.apply(ops, a, b) == reference.apply(ops, a, b)


@pytest.mark.parametrize("name", ["schoolbook", "complex", "karatsuba"])
def test_sqr2_variants_agree(quadratic_setup, name):
    field, ops = quadratic_setup
    rng = random.Random(1 + (hash(name) & 0xFFFF))
    mul = get_variant("mul", 2, "schoolbook")
    variant = get_variant("sqr", 2, name)
    for _ in range(20):
        a = _random_tuple(field, 2, rng)
        assert variant.apply(ops, a) == mul.apply(ops, a, a)


@pytest.mark.parametrize("name", ["schoolbook", "karatsuba"])
def test_mul3_variants_agree(cubic_setup, name):
    field, ops = cubic_setup
    rng = random.Random(2 + (hash(name) & 0xFFFF))
    reference = get_variant("mul", 3, "schoolbook")
    variant = get_variant("mul", 3, name)
    for _ in range(20):
        a = _random_tuple(field, 3, rng)
        b = _random_tuple(field, 3, rng)
        assert variant.apply(ops, a, b) == reference.apply(ops, a, b)


@pytest.mark.parametrize("name", ["schoolbook", "ch-sqr1", "ch-sqr2", "ch-sqr3", "complex"])
def test_sqr3_variants_agree(cubic_setup, name):
    field, ops = cubic_setup
    rng = random.Random(3 + (hash(name) & 0xFFFF))
    mul = get_variant("mul", 3, "schoolbook")
    variant = get_variant("sqr", 3, name)
    for _ in range(20):
        a = _random_tuple(field, 3, rng)
        assert variant.apply(ops, a) == mul.apply(ops, a, a)


# ---------------------------------------------------------------------------
# Costs (Table 3)
# ---------------------------------------------------------------------------

def test_karatsuba2_cost_matches_table3():
    cost = get_variant("mul", 2, "karatsuba").cost()
    assert cost.mul == 3
    assert cost.adj == 1
    assert cost.add == 5


def test_schoolbook2_cost_matches_table3():
    cost = get_variant("mul", 2, "schoolbook").cost()
    assert cost.mul == 4
    assert cost.adj == 1


def test_karatsuba3_cost():
    cost = get_variant("mul", 3, "karatsuba").cost()
    assert cost.mul == 6
    assert get_variant("mul", 3, "schoolbook").cost().mul == 9


def test_sqr_costs_ranked():
    complex2 = get_variant("sqr", 2, "complex").cost()
    school2 = get_variant("sqr", 2, "schoolbook").cost()
    assert complex2.mul + complex2.sqr <= school2.mul + school2.sqr
    ch2 = get_variant("sqr", 3, "ch-sqr2").cost()
    assert ch2.mul + ch2.sqr == 5


def test_cost_string_and_weight():
    cost = get_variant("mul", 2, "karatsuba").cost()
    assert "3M" in str(cost)
    assert cost.weighted(mul_weight=1.0, linear_weight=0.0) == 3


# ---------------------------------------------------------------------------
# Registry and configuration
# ---------------------------------------------------------------------------

def test_registry_lookup_and_errors():
    assert len(list_variants()) >= 10
    assert len(list_variants("mul")) >= 4
    assert len(list_variants("sqr", 3)) >= 4
    with pytest.raises(FieldError):
        get_variant("mul", 2, "does-not-exist")


def test_variant_config_defaults_and_overrides():
    config = VariantConfig.all_karatsuba()
    assert config.variant_for("mul", 12, 3).name == "karatsuba"
    school = VariantConfig.all_schoolbook()
    assert school.variant_for("mul", 12, 3).name == "schoolbook"
    manual = VariantConfig.manual()
    assert manual.variant_for("mul", 2, 2).name == "schoolbook"
    assert manual.variant_for("mul", 12, 3).name == "karatsuba"
    override = config.with_override("mul", 6, "schoolbook")
    assert override.variant_for("mul", 6, 3).name == "schoolbook"
    assert config.variant_for("mul", 6, 3).name == "karatsuba"


def test_variant_config_cache_key_and_describe():
    a = VariantConfig.all_karatsuba()
    b = VariantConfig.all_karatsuba()
    assert a.cache_key() == b.cache_key()
    c = a.with_override("mul", 2, "schoolbook")
    assert c.cache_key() != a.cache_key()
    description = c.describe()
    assert description["overrides"] == {"mul@2": "schoolbook"}


def test_variant_config_rejects_unknown_point_style():
    with pytest.raises(FieldError):
        VariantConfig(point_style="edwards")


def test_schoolbook_below_threshold():
    config = VariantConfig.schoolbook_below(4)
    assert config.variant_for("mul", 2, 2).name == "schoolbook"
    assert config.variant_for("mul", 4, 2).name == "schoolbook"
    assert config.variant_for("mul", 12, 3).name == "karatsuba"
