"""Reliability primitives: fault plans, retry/backoff, circuit breaker."""

import os

import pytest

from repro.errors import (
    CompilerError,
    InjectedFaultError,
    ReliabilityError,
    ServiceError,
    WorkerCrashError,
)
from repro.reliability import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ReliabilityStats,
    RetryPolicy,
    call_with_retries,
    configure_faults,
    configure_faults_from_env,
)
from repro.reliability import faults as faults_module
from repro.reliability.faults import FAULTS_ENV


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    os.environ.pop(FAULTS_ENV, None)
    configure_faults(None)


# ---------------------------------------------------------------------------
# FaultPlan grammar
# ---------------------------------------------------------------------------

def test_plan_parse_full_grammar(tmp_path):
    plan = FaultPlan.parse(
        f"store.read:truncate@2;worker.evaluate:crash*3;compile:error~0.25;"
        f"service.verify_batch:error@4*inf;seed=99;dir={tmp_path}"
    )
    assert plan.seed == 99
    assert plan.state_dir == str(tmp_path)
    by_point = {spec.point: spec for spec in plan.specs}
    assert by_point["store.read"].mode == "truncate"
    assert by_point["store.read"].nth == 2
    assert by_point["worker.evaluate"].count == 3
    assert by_point["compile"].prob == 0.25
    assert by_point["service.verify_batch"].count >= 10**9
    # describe() round-trips through parse()
    assert FaultPlan.parse(plan.describe()) == plan


def test_plan_parse_empty_and_whitespace():
    assert FaultPlan.parse("").specs == ()
    assert FaultPlan.parse(" ; ; ").specs == ()


@pytest.mark.parametrize("bad", [
    "nonsense",
    "store.read",                      # missing mode
    "bogus.point:error",               # unknown point
    "store.read:crash",                # unsupported mode for the point
    "compile:error@0",                 # nth < 1
    "compile:error*0",                 # count < 1
    "compile:error~1.5",               # prob out of range
    "compile:error~x",                 # unparseable prob
    "seed=pi",
    "dir=",
])
def test_plan_parse_rejects_malformed(bad):
    with pytest.raises(ReliabilityError):
        FaultPlan.parse(bad)


def test_configure_faults_rejects_wrong_type():
    with pytest.raises(ReliabilityError):
        configure_faults(42)


def test_env_activation_and_reset(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "compile:error@1")
    injector = configure_faults_from_env()
    assert faults_module.ACTIVE is injector
    assert injector.plan.specs[0].point == "compile"
    monkeypatch.delenv(FAULTS_ENV)
    assert configure_faults_from_env() is None
    assert faults_module.ACTIVE is None


def test_env_activation_fails_loudly_on_typos(monkeypatch):
    # A malformed plan must raise, not silently disable injection: a chaos
    # run with no faults would pass its match-the-baseline assertions
    # vacuously.
    monkeypatch.setenv(FAULTS_ENV, "store.read:truncat")
    with pytest.raises(ReliabilityError):
        configure_faults_from_env()


# ---------------------------------------------------------------------------
# FaultInjector firing and corruption
# ---------------------------------------------------------------------------

def test_injector_window_and_counters():
    injector = FaultInjector(FaultPlan.parse("compile:error@2*2"))
    injector.apply("compile")                      # hit 1: before window
    for _ in range(2):                             # hits 2 and 3: in window
        with pytest.raises(CompilerError):
            injector.apply("compile")
    injector.apply("compile")                      # hit 4: after window
    snap = injector.snapshot()
    assert snap["hits"]["compile"] == 4
    assert snap["fired"]["compile:error"] == 2


def test_injector_error_types_per_point():
    for point, expected in [
        ("store.read", OSError),
        ("store.write", OSError),
        ("compile", CompilerError),
        ("worker.evaluate", InjectedFaultError),
        ("service.verify_batch", ServiceError),
    ]:
        injector = FaultInjector(FaultPlan.parse(f"{point}:error@1"))
        with pytest.raises(expected):
            injector.apply(point, b"payload" if point.startswith("store") else None)


def test_injector_enospc_carries_errno():
    import errno

    injector = FaultInjector(FaultPlan.parse("store.write:enospc@1"))
    with pytest.raises(OSError) as exc_info:
        injector.apply("store.write", b"payload")
    assert exc_info.value.errno == errno.ENOSPC


def test_injector_crash_raises_in_process():
    injector = FaultInjector(FaultPlan.parse("worker.evaluate:crash@1"))
    with pytest.raises(WorkerCrashError):
        injector.apply("worker.evaluate")


@pytest.mark.parametrize("mode", ["truncate", "torn", "garbage", "flip"])
def test_corruption_modes_change_bytes_deterministically(mode):
    data = bytes(range(200))
    first = FaultInjector(FaultPlan.parse(f"store.read:{mode}@1;seed=5"))
    second = FaultInjector(FaultPlan.parse(f"store.read:{mode}@1;seed=5"))
    corrupted = first.apply("store.read", data)
    assert corrupted != data
    # Same plan, same seed -> identical corruption (determinism contract).
    assert second.apply("store.read", data) == corrupted


def test_injector_probabilistic_is_seeded():
    def fires(seed):
        injector = FaultInjector(FaultPlan.parse(f"compile:error~0.5;seed={seed}"))
        out = []
        for _ in range(32):
            try:
                injector.apply("compile")
                out.append(False)
            except CompilerError:
                out.append(True)
        return out

    assert fires(3) == fires(3)
    assert any(fires(3)) and not all(fires(3))


def test_injector_unknown_point_raises():
    injector = FaultInjector(FaultPlan.parse("compile:error@1"))
    with pytest.raises(ReliabilityError):
        injector.apply("no.such.point")


def test_token_dir_bounds_fires_across_injectors(tmp_path):
    # Two injectors share a state dir: a *1 budget fires exactly once in
    # total, modelling one crash budget across respawned pool workers.
    plan = FaultPlan.parse(f"compile:error@1*1;dir={tmp_path}")
    first, second = FaultInjector(plan), FaultInjector(plan)
    with pytest.raises(CompilerError):
        first.apply("compile")
    second.apply("compile")          # budget exhausted by the first injector
    assert second.snapshot()["fired"] == {}


def test_inactive_by_default():
    configure_faults(None)
    assert faults_module.ACTIVE is None


# ---------------------------------------------------------------------------
# RetryPolicy / call_with_retries
# ---------------------------------------------------------------------------

def test_retry_policy_validation():
    with pytest.raises(ReliabilityError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ReliabilityError):
        RetryPolicy(max_retries=True)
    with pytest.raises(ReliabilityError):
        RetryPolicy(base_delay_s=-0.1)


def test_backoff_is_full_jitter_within_cap():
    policy = RetryPolicy(max_retries=5, base_delay_s=0.1, max_delay_s=0.4, seed=7)
    rng = policy.rng("point-a")
    for attempt in range(6):
        cap = min(0.4, 0.1 * 2 ** attempt)
        delay = policy.backoff_s(attempt, rng)
        assert 0.0 <= delay <= cap
    # Deterministic per (seed, label), distinct across labels.
    again = [RetryPolicy(seed=7).rng("x").uniform(0, 1) for _ in range(2)]
    assert again == [RetryPolicy(seed=7).rng("x").uniform(0, 1) for _ in range(2)]


def test_call_with_retries_heals_transients():
    attempts = {"n": 0}
    events = []

    def flaky():
        attempts["n"] += 1
        if attempts["n"] <= 2:
            raise OSError("transient")
        return "ok"

    result = call_with_retries(
        flaky, RetryPolicy(max_retries=2, base_delay_s=0.0),
        label="p", on_retry=lambda a, e, d: events.append((a, type(e).__name__)),
    )
    assert result == "ok"
    assert events == [(0, "OSError"), (1, "OSError")]


def test_call_with_retries_exhausts_budget():
    def always_fails():
        raise OSError("persistent")

    with pytest.raises(OSError):
        call_with_retries(always_fails, RetryPolicy(max_retries=1, base_delay_s=0.0))


def test_call_with_retries_skips_non_retryable():
    calls = {"n": 0}

    def programming_error():
        calls["n"] += 1
        raise ValueError("bad input")

    with pytest.raises(ValueError):
        call_with_retries(programming_error,
                          RetryPolicy(max_retries=5, base_delay_s=0.0))
    assert calls["n"] == 1

    def crash():
        calls["n"] += 1
        raise WorkerCrashError("boom")

    with pytest.raises(WorkerCrashError):
        call_with_retries(crash, RetryPolicy(max_retries=5, base_delay_s=0.0))
    assert calls["n"] == 2


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_trips_cools_probes_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0, clock=clock)
    assert breaker.state == CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == CLOSED        # below threshold
    breaker.record_failure()
    assert breaker.state == OPEN and breaker.trips == 1
    assert not breaker.allow()
    clock.now = 9.9
    assert not breaker.allow()            # still cooling
    clock.now = 10.0
    assert breaker.state == HALF_OPEN
    assert breaker.allow()                # the single probe
    assert not breaker.allow()            # second caller must wait on it
    assert breaker.probes == 1
    breaker.record_success()
    assert breaker.state == CLOSED and breaker.allow()


def test_breaker_failed_probe_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.now = 5.0
    assert breaker.allow()
    breaker.record_failure()              # probe failed
    assert breaker.state == OPEN and breaker.trips == 2
    clock.now = 9.0
    assert not breaker.allow()            # cooldown restarted at t=5
    clock.now = 10.0
    assert breaker.allow()


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED        # streak broken, no trip
    assert breaker.snapshot()["consecutive_failures"] == 1


def test_breaker_validation():
    with pytest.raises(ReliabilityError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ReliabilityError):
        CircuitBreaker(cooldown_s=-1.0)


# ---------------------------------------------------------------------------
# ReliabilityStats
# ---------------------------------------------------------------------------

def test_reliability_stats_merge_snapshot_reset():
    stats = ReliabilityStats()
    assert not stats.any()
    stats.merge_counters({"retries": 2, "backoff_s": 0.5})
    stats.worker_crashes += 1
    snap = stats.snapshot()
    assert snap["retries"] == 2
    assert snap["backoff_s"] == 0.5
    assert snap["worker_crashes"] == 1
    assert stats.any()
    stats.reset()
    assert not stats.any()


def test_fault_spec_validation_direct():
    with pytest.raises(ReliabilityError):
        FaultSpec(point="compile", mode="error", nth=0)
    with pytest.raises(ReliabilityError):
        FaultSpec(point="compile", mode="error", prob=0.0)
