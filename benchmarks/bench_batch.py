"""Benchmark for the compiled batched multi-pairing kernel.

Saves ``benchmarks/results/batch_verify.json`` so the CI regression guard
(``benchmarks/compare_bench.py``) tracks the batched cycle counts exactly like
the single-pairing numbers: the ``cycles`` leaves come from the deterministic
multi-core simulator, so any increase is a real compiler/model change.  Both
accumulator modes are recorded per (batch, core count) cell -- ``shared`` (one
fused chain on core 0) and ``split`` (one chain per core, merged before the
final exponentiation) -- so the guard watches the split-accumulator win as
well as the classic numbers going forward.
"""

import json

from repro.evaluation import batch_verify


def test_batched_verify_cycles(benchmark, save_result):
    result = benchmark.pedantic(batch_verify.run, rounds=1, iterations=1)
    save_result("batch_verify", result)

    rows = {row["batch"]: row for row in result["rows"]}
    largest = max(rows)
    assert largest >= 4
    # Core scaling: at the largest batch, 4 cores must beat 1 core strictly,
    # in both accumulator modes.
    big = rows[largest]["modes"]
    assert big["shared"]["c4"]["cycles"] < big["shared"]["c1"]["cycles"]
    assert big["split"]["c4"]["cycles"] < big["split"]["c1"]["cycles"]
    # The split-accumulator kernel removes the shared-chain serialisation:
    # on 4 cores at the largest batch it must be strictly faster than the
    # shared kernel (on 1 core the two are the same kernel by construction).
    assert big["split"]["c4"]["cycles"] < big["shared"]["c4"]["cycles"]
    assert big["split"]["c1"]["cycles"] == big["shared"]["c1"]["cycles"]
    # The legacy "cores" layout mirrors the shared-mode cells.  Checked on a
    # serialised round-trip: in the live dict the two are the same object, so
    # only the JSON view can catch the mirror being wired to the wrong cells.
    serialised = json.loads(json.dumps(result, default=str))
    for row in serialised["rows"]:
        assert row["cores"] == row["modes"]["shared"]
    # Batch amortisation: cycles per pairing fall monotonically with the batch
    # at every simulated core count (single final exp + shared squarings).
    for mode in result["modes"]:
        for label in (f"c{n}" for n in result["core_counts"]):
            per_pairing = [rows[batch]["modes"][mode][label]["cycles_per_pairing"]
                           for batch in sorted(rows)]
            assert per_pairing == sorted(per_pairing, reverse=True)
            assert per_pairing[-1] < per_pairing[0]
    # The cyclotomic final-exp fast path: at the largest batch, the
    # Granger-Scott kernel must cut the final-exp phase cycles by >= 20% vs
    # the generic kernel (the tentpole acceptance bar) in both accumulator
    # modes, and total batch cycles must drop with it.  The compressed
    # (Karabina) kernel must also beat generic, at fewer instructions.
    fe = result["final_exp"]["modes"]
    for acc_mode in ("shared", "split"):
        for label in (f"c{n}" for n in result["core_counts"]):
            generic = fe["generic"][acc_mode][label]
            cyclo = fe["cyclotomic"][acc_mode][label]
            compressed = fe["compressed"][acc_mode][label]
            assert cyclo["final_exp_cycles"] <= 0.8 * generic["final_exp_cycles"]
            assert cyclo["cycles"] < generic["cycles"]
            assert compressed["final_exp_cycles"] < generic["final_exp_cycles"]
            assert compressed["cycles"] < generic["cycles"]
    # Cross-batch pipelining: depth 1 is the one-shot kernel bit for bit, and
    # keeping >= 2 batch instances in flight must cut the steady-state cycles
    # per pairing strictly (the final-exp tail overlaps the next instance's
    # Miller lanes) in both accumulator modes on the 4-core model.  Deeper
    # pipelines may only improve or hold the steady state, never regress it.
    pipe = result["pipeline"]["modes"]
    pbatch = result["pipeline"]["batch"]
    for acc_mode in ("shared", "split"):
        assert (pipe[acc_mode]["c4"]["d1"]["cycles"]
                == rows[pbatch]["modes"][acc_mode]["c4"]["cycles"])
        d1 = pipe[acc_mode]["c4"]["d1"]["steady_cycles_per_pairing"]
        d2 = pipe[acc_mode]["c4"]["d2"]["steady_cycles_per_pairing"]
        d4 = pipe[acc_mode]["c4"]["d4"]["steady_cycles_per_pairing"]
        assert d2 < d1
        assert d4 <= d2
    # The overlap is visible in the occupancy telemetry: at depth 4 the
    # final-exp span has other cores issuing the next instances' Miller work,
    # which a one-shot run never shows.
    assert pipe["split"]["c4"]["d4"]["final_exp_busy_cores"] > 1
    assert pipe["split"]["c4"]["d1"]["final_exp_busy_cores"] == 1
