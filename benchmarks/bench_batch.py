"""Benchmark for the compiled batched multi-pairing kernel.

Saves ``benchmarks/results/batch_verify.json`` so the CI regression guard
(``benchmarks/compare_bench.py``) tracks the batched cycle counts exactly like
the single-pairing numbers: the ``cycles`` leaves come from the deterministic
multi-core simulator, so any increase is a real compiler/model change.
"""

from repro.evaluation import batch_verify


def test_batched_verify_cycles(benchmark, save_result):
    result = benchmark.pedantic(batch_verify.run, rounds=1, iterations=1)
    save_result("batch_verify", result)

    rows = {row["batch"]: row for row in result["rows"]}
    largest = max(rows)
    assert largest >= 4
    # Core scaling: at the largest batch, 4 cores must beat 1 core strictly.
    big = rows[largest]["cores"]
    assert big["c4"]["cycles"] < big["c1"]["cycles"]
    # Batch amortisation: cycles per pairing fall monotonically with the batch
    # at every simulated core count (single final exp + shared squarings).
    for label in (f"c{n}" for n in result["core_counts"]):
        per_pairing = [rows[batch]["cores"][label]["cycles_per_pairing"]
                       for batch in sorted(rows)]
        assert per_pairing == sorted(per_pairing, reverse=True)
        assert per_pairing[-1] < per_pairing[0]
