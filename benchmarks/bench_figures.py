"""Benchmarks regenerating the paper's figures (2, 6, 8, 9, 10, 11, 12)."""

from repro.evaluation import fig2, fig6, fig8, fig9, fig10, fig11, fig12
from repro.evaluation.common import bench_scale


def test_fig2_operator_variant_ablation(benchmark, save_result):
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    save_result("fig2", result)
    # Disabling Karatsuba on the lowest level must not be worse than all-Karatsuba
    # on the single-issue memory-bound pipeline (the paper's observation).
    by_name = {entry["config"]: entry for entry in result["series"]}
    assert by_name["karat-wo-p2"]["normalized_cycles"] <= 1.02
    assert by_name["manual"]["normalized_cycles"] <= 1.02


def test_fig6_area_breakdown(benchmark, save_result):
    result = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    save_result("fig6", result)
    one = result["breakdowns"]["1-core"]
    eight = result["breakdowns"]["8-core"]
    assert one["imem"] > 0.3                     # IMem dominates the single core
    assert eight["imem"] < 0.25                  # ... and amortises across cores
    assert result["area_scale_factor_8core"] < 8


def test_fig8_scalability(benchmark, save_result):
    result = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    save_result("fig8", result)
    rows = sorted(result["rows"], key=lambda row: row["k_log_p"])
    assert rows[-1]["delay_us"] > rows[0]["delay_us"]
    # Area grows clearly sub-quadratically in k*log p.
    assert result["area_growth_exponent_vs_klogp"] < 1.8


def test_fig9_issue_queue(benchmark, save_result):
    result = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    save_result("fig9", result)
    for row in result["rows"]:
        assert row["after_occupancy"] > row["before_occupancy"]
        assert row["after_cycles"] < row["before_cycles"]


def test_fig10_design_space_search(benchmark, save_result):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    save_result("fig10", result)
    for row in result["rows"]:
        assert row["results"]["optimal"] <= min(
            row["results"]["all-karatsuba"], row["results"]["all-schoolbook"]
        )


def test_fig11_alu_family_codesign(benchmark, save_result):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    save_result("fig11", result)
    rows = result["rows"]
    assert rows[0]["critical_path_ns"] > rows[-1]["critical_path_ns"] * 0.99
    # IPC tends to fall with pipeline depth, but the tiny smoke-scale kernels
    # are noisy (same tolerance as the tier-1 codesign test).
    assert rows[-1]["ipc"] <= rows[0]["ipc"] + 0.05
    if bench_scale() != "smoke":
        assert result["optimal_long_latency"] >= 26


def test_fig12_quad_core_chip(benchmark, save_result):
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    save_result("fig12", result)
    summary = result["summary"]
    assert summary["n_cores"] == 4
    assert summary["pairing_throughput_kops"] > 0
