"""Benchmark for the multi-objective Pareto sweep (exhaustive vs guided search).

Saves ``benchmarks/results/pareto_sweep.json`` so the CI regression guard
(``benchmarks/compare_bench.py``) watches the sweep like any other experiment:
the per-frontier-row ``cycles`` leaves pin down frontier *membership* (a point
falling off the frontier changes the guarded cells) and each strategy's
``total_evaluated_cycles`` leaf pins down *which* points the strategy pushed
through the full tool-chain, so a silently inflated or drifted promotion set
fails CI.  Sweep wall-clock and evaluated-point counts are recorded alongside.

The assertions are the guided-search acceptance bar: every guided strategy
must recover the exhaustive Pareto frontier on the toy design space while
evaluating at most half of the points.
"""

from repro.evaluation import pareto_sweep

#: Ceiling on the fraction of the space a guided strategy may fully evaluate.
MAX_GUIDED_FRACTION = 0.5


def test_pareto_sweep(benchmark, save_result):
    result = benchmark.pedantic(pareto_sweep.run, rounds=1, iterations=1)
    save_result("pareto_sweep", result)

    strategies = result["strategies"]
    exhaustive = strategies["exhaustive"]
    assert exhaustive["evaluated_points"] == exhaustive["total_points"] == result["points"]
    assert exhaustive["frontier_size"] >= 2
    exhaustive_labels = {row["label"] for row in exhaustive["frontier"]}

    guided = {name: entry for name, entry in strategies.items() if name != "exhaustive"}
    assert guided, "the sweep must compare at least one guided strategy"
    for name, entry in guided.items():
        # Budget bar: at most half the space through the full tool-chain.
        fraction = entry["evaluated_points"] / entry["total_points"]
        assert fraction <= MAX_GUIDED_FRACTION, (
            f"{name} evaluated {entry['evaluated_points']}/{entry['total_points']} "
            f"points ({fraction:.0%} > {MAX_GUIDED_FRACTION:.0%})"
        )
        # Fidelity bar: the guided frontier contains the exhaustive frontier.
        labels = {row["label"] for row in entry["frontier"]}
        assert entry["recovers_exhaustive"]
        assert exhaustive_labels <= labels, (
            f"{name} lost frontier points: {sorted(exhaustive_labels - labels)}"
        )
        assert entry["wall_s"] >= 0.0

    # The power axes are populated and vary across the frontier, so
    # power/energy/throughput_per_watt are genuinely rankable objectives.
    for entry in strategies.values():
        for row in entry["frontier"]:
            assert row["power_mw"] > 0.0
            assert row["energy_per_pairing_uj"] > 0.0
            assert row["throughput_per_watt"] > 0.0
    powers = {row["power_mw"] for row in exhaustive["frontier"]}
    assert len(powers) > 1
