"""Benchmark regression guard: compare two benchmark result sets.

Usage::

    python benchmarks/compare_bench.py --baseline DIR --current DIR \
        [--threshold 0.25] [--summary PATH]

Both directories are searched recursively for JSON files.  Two kinds of
metrics are extracted:

* **Cycle counts** -- every numeric leaf named ``cycles`` (or ``*_cycles``)
  in the experiment outputs (``benchmarks/results/*.json``).  These come from
  the deterministic cycle-accurate simulator, so *any* increase is a real
  modelling/compiler change; increases beyond the threshold **fail** the run.
* **Wall-clock timings** -- ``stats.mean`` of every entry of pytest-benchmark
  files (``BENCH_*.json``).  Shared CI runners make these noisy, so they are
  reported for context but never fail the guard.

A markdown delta table is printed and, when ``--summary`` (or the
``GITHUB_STEP_SUMMARY`` environment variable) names a file, appended to it so
the deltas land in the CI job summary.  A missing baseline -- the first run of
a new repository or an expired artifact -- passes with a note: the guard only
ever compares against evidence that exists.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.25


def _iter_json_files(root: Path):
    if root.is_file() and root.suffix == ".json":
        yield root
        return
    if root.is_dir():
        yield from sorted(root.rglob("*.json"))


def _walk_numeric_leaves(node, path, out):
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            _walk_numeric_leaves(value, f"{path}.{key}", out)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            _walk_numeric_leaves(value, f"{path}[{index}]", out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[path] = float(node)


def _is_cycle_key(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1]
    return leaf == "cycles" or leaf.endswith("_cycles")


def collect_metrics(root: Path) -> tuple[dict, dict]:
    """Return ``(cycle_metrics, timing_metrics)`` keyed by ``file:json-path``."""
    cycles: dict = {}
    timings: dict = {}
    for file in _iter_json_files(root):
        try:
            payload = json.loads(file.read_text())
        except (OSError, ValueError):
            continue
        label = file.name
        if isinstance(payload, dict) and "benchmarks" in payload:
            # pytest-benchmark schema: one timing metric per benchmark entry.
            for entry in payload.get("benchmarks", []):
                name = entry.get("fullname") or entry.get("name") or "?"
                mean = entry.get("stats", {}).get("mean")
                if isinstance(mean, (int, float)):
                    timings[f"{label}:{name}"] = float(mean)
            continue
        leaves: dict = {}
        _walk_numeric_leaves(payload, "", leaves)
        for path, value in leaves.items():
            if _is_cycle_key(path):
                cycles[f"{label}:{path.lstrip('.')}"] = value
    return cycles, timings


def compare(baseline: dict, current: dict) -> list:
    """``(key, old, new, delta)`` for metrics present on both sides.

    ``delta`` is ``None`` when the baseline value is ``0`` and the current one
    is not: there is no meaningful relative change from zero, so the row is
    reported as informational instead of crashing on the division (or failing
    the guard on an infinite delta).
    """
    rows = []
    for key in sorted(baseline.keys() & current.keys()):
        old, new = baseline[key], current[key]
        if old:
            delta = (new - old) / old
        elif new == old:
            delta = 0.0
        else:
            delta = None               # new value appeared from a 0 baseline
        rows.append((key, old, new, delta))
    return rows


def changed_keys(baseline: dict, current: dict) -> tuple:
    """``(added, removed)`` metric keys present on only one side.

    Renamed experiments and new benchmark cells must not crash (or silently
    skew) the guard: one-sided metrics are reported and the comparison
    continues over the intersection.
    """
    added = sorted(current.keys() - baseline.keys())
    removed = sorted(baseline.keys() - current.keys())
    return added, removed


def _format_delta(delta) -> str:
    return "n/a (baseline 0)" if delta is None else f"{delta:+.1%}"


def render_table(title: str, rows: list, limit: int = 20) -> str:
    lines = [f"### {title}", "", "| metric | baseline | current | delta |", "|---|---:|---:|---:|"]
    # Undefined deltas (0 baselines) sort first so they are always visible.
    shown = sorted(rows, key=lambda r: float("inf") if r[3] is None else abs(r[3]),
                   reverse=True)[:limit]
    for key, old, new, delta in shown:
        lines.append(f"| `{key}` | {old:g} | {new:g} | {_format_delta(delta)} |")
    if len(rows) > limit:
        lines.append(f"| _... {len(rows) - limit} more within noise_ | | | |")
    return "\n".join(lines)


def render_changed(added: list, removed: list, limit: int = 20) -> str:
    lines = ["### Metrics present on one side only (informational)", ""]
    for label, keys in (("new", added), ("removed", removed)):
        for key in keys[:limit]:
            lines.append(f"- {label}: `{key}`")
        if len(keys) > limit:
            lines.append(f"- _... {len(keys) - limit} more {label} metrics_")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", required=True, type=Path)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="maximum tolerated relative cycle-count increase")
    parser.add_argument("--summary", type=Path,
                        default=os.environ.get("GITHUB_STEP_SUMMARY") or None,
                        help="markdown file to append the delta tables to")
    args = parser.parse_args(argv)

    base_cycles, base_timings = collect_metrics(args.baseline)
    cur_cycles, cur_timings = collect_metrics(args.current)

    report = ["## Benchmark regression guard", ""]
    if not base_cycles and not base_timings:
        report.append("No baseline benchmark artifact found -- first run, nothing to compare.")
        verdict = 0
    else:
        cycle_rows = compare(base_cycles, cur_cycles)
        timing_rows = compare(base_timings, cur_timings)
        added, removed = changed_keys(base_cycles, cur_cycles)
        # Only well-defined relative increases fail the guard; 0-baseline
        # rows (delta None) and one-sided metrics are informational.
        regressions = [r for r in cycle_rows if r[3] is not None and r[3] > args.threshold]
        if cycle_rows:
            report.append(render_table(
                f"Cycle counts ({len(cycle_rows)} compared, "
                f"fail over +{args.threshold:.0%})", cycle_rows))
            report.append("")
        if added or removed:
            report.append(render_changed(added, removed))
            report.append("")
        if timing_rows:
            report.append(render_table(
                f"Wall-clock means ({len(timing_rows)} compared, informational)",
                timing_rows, limit=10))
            report.append("")
        if regressions:
            report.append(f"**FAIL: {len(regressions)} cycle-count regression(s) "
                          f"beyond +{args.threshold:.0%}.**")
            verdict = 1
        else:
            report.append(f"All {len(cycle_rows)} cycle metrics within "
                          f"+{args.threshold:.0%} of the baseline.")
            verdict = 0

    text = "\n".join(report)
    try:
        print(text)
    except BrokenPipeError:            # e.g. piped into `head`
        pass
    if args.summary:
        try:
            with open(args.summary, "a") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            print(f"(could not append to summary file: {exc})", file=sys.stderr)
    return verdict


if __name__ == "__main__":
    raise SystemExit(main())
