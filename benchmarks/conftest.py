"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper through the
evaluation harness (``repro.evaluation``).  Heavy experiments honour the
``FINESSE_BENCH_SCALE`` environment variable (``full`` / ``reduced`` / ``smoke``,
default ``reduced``): the reduced scale keeps every series and every comparison
of the paper but substitutes the small BLS24 test curve for BLS24-509 in the
two design-space sweeps that would otherwise recompile the largest curve many
times in pure Python.  See EXPERIMENTS.md for the scale used for the shipped
numbers.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

RESULTS_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_PATH, exist_ok=True)
    return RESULTS_PATH


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist each experiment's structured output next to the benchmark run."""

    def _save(name: str, payload: dict) -> None:
        path = os.path.join(results_dir, f"{name}.json")
        with open(path, "w") as handle:
            json.dump(json.loads(json.dumps(payload, default=str)), handle, indent=2)

    return _save
