"""Benchmark for the streaming verification service (dynamic batching win).

Two layers, one result file (``benchmarks/results/service_load.json``):

* **Live load runs** -- the real asyncio service on the toy curve, driven by
  the open-loop load generator at the same offered load with ``max_batch=8``
  and ``max_batch=1``.  Batching must sustain >= 1.5x the unbatched
  verifications/sec at saturation (the fused batch shares one Miller-squaring
  chain and ONE final exponentiation), and a moderate-load run must keep p95
  latency under a generous ceiling.  Wall-clock figures are informational for
  the CI guard (shared runners are noisy) but the ratio assertion runs here.
* **Virtual-time model** -- the same batching policy replayed in *cycle* time
  units: per-batch service times come from the deterministic compiled-kernel
  cycle counts, arrivals from a seeded trace.  Every ``*_cycles`` leaf is
  bit-reproducible, so ``benchmarks/compare_bench.py`` guards the service-path
  latency model exactly like the kernel cycle counts.
"""

import asyncio

from repro.compiler.pipeline import compile_multi_pairing
from repro.curves.catalog import get_curve
from repro.evaluation.common import bench_scale
from repro.hw.presets import paper_hw1
from repro.service import ServiceConfig, VerificationService, arrival_times, simulate_batch_queue
from repro.service.loadgen import run_load

#: The Groth16 verifier shape: 3 pairs per request.
PAIRS_PER_REQUEST = 3
MAX_BATCH = 8


def _request_count() -> int:
    return {"smoke": 16, "reduced": 32}.get(bench_scale(), 64)


def _live_run(curve, n: int, max_batch: int, rate_rps: float,
              deadline_ms: float = 20.0) -> dict:
    async def scenario():
        config = ServiceConfig(max_batch=max_batch, deadline_ms=deadline_ms,
                               queue_bound=max(64, 4 * n))
        async with VerificationService(curve, config) as service:
            return await run_load(service, rate_rps=rate_rps, n_requests=n,
                                  arrival="poisson", seed=5, workload="groth16")

    return asyncio.run(scenario())


def _model_run(curve) -> dict:
    """Cycle-domain replay of the batching policy (fully deterministic)."""
    hw = paper_hw1(curve.params.p.bit_length())
    one = compile_multi_pairing(curve, PAIRS_PER_REQUEST, hw=hw,
                                do_assemble=False).cycles
    full = compile_multi_pairing(curve, PAIRS_PER_REQUEST * MAX_BATCH, hw=hw,
                                 do_assemble=False).cycles
    slope = (full - one) / (MAX_BATCH - 1)

    def service_cycles(k: int) -> float:
        return one + slope * (k - 1)

    # Offered load at 2x the serial capacity: the serial server saturates,
    # the batched one amortises the shared tail and keeps up.
    arrivals = arrival_times(128, 2.0 / one, distribution="poisson", seed=3)
    batched = simulate_batch_queue(arrivals, service_cycles,
                                   max_batch=MAX_BATCH, deadline=0.5 * one)
    serial = simulate_batch_queue(arrivals, service_cycles, max_batch=1, deadline=0.0)

    def cycles_view(outcome) -> dict:
        return {
            "p50_cycles": round(outcome.latency_percentile(50), 1),
            "p95_cycles": round(outcome.latency_percentile(95), 1),
            "p99_cycles": round(outcome.latency_percentile(99), 1),
            "mean_batch_size": round(sum(outcome.batch_sizes)
                                     / len(outcome.batch_sizes), 2),
            "throughput_per_mcycle": round(outcome.sustained_throughput() * 1e6, 4),
        }

    return {
        "kernel": {
            "pairs_per_request": PAIRS_PER_REQUEST,
            "max_batch": MAX_BATCH,
            "request_cycles": one,
            "full_batch_cycles": full,
        },
        "batched": cycles_view(batched),
        "serial": cycles_view(serial),
        "throughput_ratio": round(batched.sustained_throughput()
                                  / serial.sustained_throughput(), 3),
    }


def test_service_batching_throughput(benchmark, save_result):
    curve = get_curve("TOY-BN42")
    n = _request_count()
    # Saturating offered load: far above the unbatched capacity (~20/s on the
    # toy curve in pure Python), so both configurations run compute-bound and
    # verified/sec measures the service, not the arrival schedule.
    saturating_rate = 500.0

    def run_pair():
        batched = _live_run(curve, n, MAX_BATCH, saturating_rate)
        serial = _live_run(curve, n, 1, saturating_rate)
        return batched, serial

    # Warm every lazy cache (field towers, hash-to-curve, vk precompute)
    # before timing: the configurations run back to back, so the cold-start
    # cost otherwise lands entirely on whichever one goes first and skews
    # the throughput ratio.
    _live_run(curve, 4, MAX_BATCH, saturating_rate)
    batched, serial = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    ratio = batched["verified_per_sec"] / serial["verified_per_sec"]

    # A moderate-load run for the latency ceiling: ~60% of batched capacity.
    moderate_rate = 0.6 * batched["verified_per_sec"]
    moderate = _live_run(curve, n, MAX_BATCH, moderate_rate)

    model = _model_run(curve)
    save_result("service_load", {
        "curve": curve.name,
        "scale": bench_scale(),
        "requests": n,
        "live": {
            "offered_rate_rps": saturating_rate,
            "batched": batched,
            "serial": serial,
            "throughput_ratio": round(ratio, 3),
            "moderate": moderate,
        },
        "model": model,
    })

    # Correctness first: every verdict matched its known expected outcome and
    # nothing was rejected (the queue bound covers the whole run).
    for report in (batched, serial, moderate):
        assert report["mismatches"] == 0
        assert report["rejected"] == 0
        assert report["completed"] == n
    # Batching actually coalesced under saturation.
    assert batched["service"]["mean_batch_size"] > 2.0
    # The acceptance bar: >= 1.5x the unbatched verifications/sec at the same
    # offered load (measured ~1.8x; the RLC batch shares one final exp).
    assert ratio >= 1.5
    # Latency stays bounded when the service is not saturated: well under the
    # time the serial path would need to drain one full batch.
    serial_batch_ms = 1e3 * MAX_BATCH / serial["verified_per_sec"]
    assert moderate["latency_ms"]["p95"] < 2.0 * serial_batch_ms
    # The deterministic model must show the same shape the live run shows.
    assert model["throughput_ratio"] >= 1.5
    assert model["batched"]["p95_cycles"] < model["serial"]["p95_cycles"]
