"""Benchmarks regenerating the paper's tables (2, 3, 5, 6, 7)."""

from repro.evaluation import table2, table3, table5, table6, table7


def test_table2_curve_parameters(benchmark, save_result):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    save_result("table2", result)
    assert len(result["rows"]) >= 3


def test_table3_operation_costs(benchmark, save_result):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    save_result("table3", result)
    assert any(row["variant"] == "karatsuba" for row in result["rows"])


def test_table5_variant_listing(benchmark, save_result):
    result = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    save_result("table5", result)
    assert len(result["rows"]) >= 6


def test_table6_accelerator_comparison(benchmark, save_result):
    result = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    save_result("table6", result)
    summary = result["summary"]
    # Shape of the headline claims: we beat the flexible FPGA framework by a large
    # factor and the fixed-function ASIC (65 nm-normalised) in area efficiency.
    assert summary["throughput_gain_vs_flexipair"] > 5
    assert summary["slice_efficiency_gain_vs_flexipair"] > 1.5
    assert summary["area_efficiency_gain_vs_ikeda_65nm"] > 1.0


def test_table7_compilation_strategies(benchmark, save_result):
    result = benchmark.pedantic(table7.run, rounds=1, iterations=1)
    save_result("table7", result)
    for row in result["rows"]:
        assert row["opt_instructions"] < row["init_instructions"]
        assert row["ipc_hw1"] > row["ipc_init"]
        assert row["ipc_hw2"] >= row["ipc_hw1"]
