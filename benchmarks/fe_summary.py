"""Final-exponentiation mode delta table for the CI job summary.

Reads the ``final_exp`` section of ``benchmarks/results/batch_verify.json``
(written by the smoke bench job) and renders a markdown table of
cycles-per-pairing for the three hard-part kernels -- generic, cyclotomic
(Granger-Scott) and compressed (Karabina) -- per accumulator mode and core
count, with the delta of each fast path against the generic baseline.  When
the payload carries a ``pipeline`` section, a second table reports the
steady-state cycles-per-pairing of the continuously-fed accelerator per
cross-batch pipeline depth, with the delta against the one-shot (depth 1)
figure.  The tables are printed to stdout and, when ``GITHUB_STEP_SUMMARY``
(or ``--summary``) names a file, appended there so the per-commit perf
trajectory of both fast paths is visible in the Actions UI.

``--pareto [PATH]`` additionally (or instead) renders the multi-objective
frontier table of ``benchmarks/results/pareto_sweep.json`` (written by the
dse-sweep job's ``bench_dse.py``): one row per exhaustive-frontier point with
its throughput/area/power figures, plus a per-strategy line showing how many
full evaluations each guided search spent recovering that frontier.

Usage::

    python benchmarks/fe_summary.py [--results PATH] [--summary PATH]
        [--pareto [PATH]]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).parent / "results" / "batch_verify.json"
DEFAULT_PARETO = Path(__file__).parent / "results" / "pareto_sweep.json"


def render_table(result: dict) -> str:
    fe = result.get("final_exp")
    if not fe:
        return "_no final_exp section in the benchmark payload (pre-1.5 result?)_"
    batch = fe["batch"]
    modes = fe["modes"]
    core_labels = [f"c{n}" for n in result.get("core_counts", (1, 2, 4))]
    # The backend is part of the header so paper-curve rows (fast backend)
    # and toy-curve rows (python backend) are never read as one series.
    lines = [
        f"### Final-exponentiation kernels -- {result.get('curve', '?')} "
        f"[fp backend: {result.get('fp_backend', 'python')}] "
        f"batch={batch} (cycles/pairing, delta vs generic)",
        "",
        "| accumulators | cores | generic | cyclotomic | compressed |",
        "|---|---|---|---|---|",
    ]
    for acc_mode in ("shared", "split"):
        for label in core_labels:
            generic = modes["generic"][acc_mode][label]
            cells = [f"{generic['cycles_per_pairing']:.0f}"]
            for fe_mode in ("cyclotomic", "compressed"):
                entry = modes[fe_mode][acc_mode][label]
                delta = 0.0
                if generic["cycles"]:
                    delta = 100.0 * (1.0 - entry["cycles"] / generic["cycles"])
                cells.append(
                    f"{entry['cycles_per_pairing']:.0f} ({delta:+.1f}%, "
                    f"fe share {entry['final_exp_share']:.0%})"
                )
            lines.append(
                f"| {acc_mode} | {label} | " + " | ".join(cells) + " |"
            )
    pipeline = render_pipeline_table(result)
    if pipeline:
        lines.extend(["", pipeline])
    return "\n".join(lines)


def render_pipeline_table(result: dict) -> str:
    """Steady-state cycles-per-pairing per cross-batch pipeline depth."""
    pipe = result.get("pipeline")
    if not pipe:
        return ""
    depths = pipe.get("depths", (1, 2, 4))
    depth_labels = [f"d{d}" for d in depths]
    lines = [
        f"### Cross-batch pipelining -- {result.get('curve', '?')} "
        f"batch={pipe['batch']} (steady-state cycles/pairing, delta vs depth 1)",
        "",
        "| accumulators | cores | " + " | ".join(
            "one-shot (d1)" if label == "d1" else f"depth {label[1:]}"
            for label in depth_labels
        ) + " |",
        "|---|---|" + "---|" * len(depth_labels),
    ]
    for acc_mode, cores in pipe["modes"].items():
        for core_label, cells in cores.items():
            base = cells.get("d1", {}).get("steady_cycles_per_pairing", 0)
            row = []
            for label in depth_labels:
                entry = cells.get(label)
                if entry is None:
                    row.append("-")
                    continue
                steady = entry["steady_cycles_per_pairing"]
                if label == "d1" or not base:
                    row.append(f"{steady:.0f}")
                else:
                    delta = 100.0 * (1.0 - steady / base)
                    row.append(f"{steady:.0f} ({delta:+.1f}%)")
            lines.append(f"| {acc_mode} | {core_label} | " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_pareto_table(result: dict) -> str:
    """Exhaustive Pareto frontier plus the guided strategies' budget lines."""
    strategies = result.get("strategies", {})
    lines = [
        f"### Multi-objective DSE -- {result.get('curve', '?')} "
        f"[fp backend: {result.get('fp_backend', 'python')}] "
        f"objectives {'+'.join(result.get('objectives', ()))} "
        f"({result.get('points', '?')} design points)",
        "",
        "| strategy | evaluated | frontier | recovers exhaustive | wall |",
        "|---|---|---|---|---|",
    ]
    for name, entry in strategies.items():
        recovers = "yes" if entry.get("recovers_exhaustive") else "**NO**"
        lines.append(
            f"| {name} | {entry['evaluated_points']}/{entry['total_points']} "
            f"({entry['evaluated_fraction']:.0%}) | {entry['frontier_size']} | "
            f"{recovers} | {entry['wall_s']:.2f}s |"
        )
    frontier = strategies.get("exhaustive", {}).get("frontier", [])
    if frontier:
        lines.extend([
            "",
            "| frontier point | cycles | MHz | throughput (op/s) | area (mm^2) "
            "| power (mW) | op/s/W |",
            "|---|---|---|---|---|---|---|",
        ])
        for row in frontier:
            lines.append(
                f"| {row['label']} | {row['cycles']} | {row['frequency_mhz']:.1f} | "
                f"{row['throughput_ops']:.1f} | {row['area_mm2']:.4f} | "
                f"{row['power_mw']:.3f} | {row['throughput_per_watt']:.1f} |"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                        help="batch_verify.json path")
    parser.add_argument("--pareto", type=Path, nargs="?", const=DEFAULT_PARETO,
                        default=None,
                        help="also render the pareto_sweep.json frontier table "
                             f"(default path when bare: {DEFAULT_PARETO})")
    parser.add_argument("--summary", type=Path, default=None,
                        help="markdown summary file (defaults to $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    tables = []
    if args.results.exists():
        tables.append(render_table(json.loads(args.results.read_text())))
    else:
        print(f"fe_summary: no results at {args.results}; nothing to report")
    if args.pareto is not None:
        if args.pareto.exists():
            tables.append(render_pareto_table(json.loads(args.pareto.read_text())))
        else:
            print(f"fe_summary: no pareto sweep at {args.pareto}; skipping table")
    if not tables:
        return 0
    output = "\n\n".join(tables)
    print(output)

    summary_path = args.summary or (
        Path(os.environ["GITHUB_STEP_SUMMARY"])
        if os.environ.get("GITHUB_STEP_SUMMARY") else None
    )
    if summary_path is not None:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(output + "\n\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
