"""Paper-curve smoke benchmark: BLS12-381 on the fast F_p backend.

The toy-catalog benchmarks exercise the compiled accelerator model; this file
is the *software-path* counterpart at the operating point the paper targets:
one ``optimal_ate_pairing`` and one batch-4 ``multi_pairing`` on BLS12-381,
running on whatever the ``fast`` backend resolves to (gmpy2 when installed,
the pure-Python reference otherwise).  Correctness is asserted alongside the
timing -- bilinearity ``e(aP, bQ) == e(P, Q)^(ab)`` for the single pairing,
bit-exactness of the fused product against the product of single pairings for
the batch -- so a wrong fast backend can never produce a green benchmark.

The file is skipped unless ``FINESSE_BENCH_PAPER`` is set: the smoke bench job
globs ``bench_*.py`` and must stay toy-scale, so the CI ``bench-paper`` job
opts in explicitly.  ``FINESSE_PAPER_BUDGET_SECONDS`` (default 120) bounds the
wall-clock of each benchmarked call; blowing the budget fails the job even
before the workflow-level timeout, which keeps "paper curves are benchmarkable"
an enforced property rather than an aspiration.

Results land in ``benchmarks/results/paper_pairing.json`` with the resolved
backend name recorded, and are compared (informationally, as wall-clock
timings) by ``benchmarks/compare_bench.py`` against the previous run.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.curves.catalog import get_curve
from repro.pairing.ate import optimal_ate_pairing
from repro.pairing.batch import multi_pairing

PAPER_BENCH_ENV = "FINESSE_BENCH_PAPER"
BUDGET_ENV = "FINESSE_PAPER_BUDGET_SECONDS"
CURVE_NAME = "BLS12-381"
BATCH = 4

pytestmark = pytest.mark.skipif(
    not os.environ.get(PAPER_BENCH_ENV),
    reason=f"paper-scale benchmark; opt in with {PAPER_BENCH_ENV}=1",
)


def _budget_seconds() -> float:
    return float(os.environ.get(BUDGET_ENV, "120"))


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def paper_curve():
    # The catalog marks paper curves `fast`; an explicit FINESSE_FP_BACKEND
    # still overrides, so the job can pin a backend for A/B runs.
    return get_curve(CURVE_NAME)


def test_paper_single_pairing(benchmark, save_result, paper_curve):
    curve = paper_curve
    rng = random.Random(0xB15381)
    P, Q = curve.random_g1(rng), curve.random_g2(rng)

    e, seconds = _timed(lambda: benchmark.pedantic(
        optimal_ate_pairing, args=(curve, P, Q), rounds=1, iterations=1))
    assert curve.is_valid_gt(e)

    # Bilinearity at paper scale: e(aP, bQ) == e(P, Q)^(ab mod r).
    a, b = rng.randrange(2, curve.r), rng.randrange(2, curve.r)
    lhs = optimal_ate_pairing(curve, P.scalar_mul(a), Q.scalar_mul(b))
    assert lhs == e ** ((a * b) % curve.r)

    budget = _budget_seconds()
    assert seconds < budget, (
        f"single {CURVE_NAME} pairing took {seconds:.1f}s on backend "
        f"{curve.fp_backend!r}, over the {budget:.0f}s budget"
    )
    save_result("paper_pairing_single", {
        "experiment": "paper_pairing_single",
        "curve": curve.name,
        "fp_backend": curve.fp_backend,
        "wall_seconds": round(seconds, 3),
        "budget_seconds": budget,
    })


def test_paper_multi_pairing_batch4(benchmark, save_result, paper_curve):
    curve = paper_curve
    rng = random.Random(0xBA7C4)
    pairs = [(curve.random_g1(rng), curve.random_g2(rng)) for _ in range(BATCH)]

    fused, seconds = _timed(lambda: benchmark.pedantic(
        multi_pairing, args=(curve, pairs), rounds=1, iterations=1))
    assert curve.is_valid_gt(fused)

    # The fused product must be bit-exact against the product of singles.
    product = curve.gt_one()
    for point_p, point_q in pairs:
        product = product * optimal_ate_pairing(curve, point_p, point_q)
    assert fused == product

    budget = _budget_seconds()
    assert seconds < budget, (
        f"batch-{BATCH} {CURVE_NAME} multi_pairing took {seconds:.1f}s on "
        f"backend {curve.fp_backend!r}, over the {budget:.0f}s budget"
    )
    save_result("paper_pairing", {
        "experiment": "paper_pairing",
        "curve": curve.name,
        "fp_backend": curve.fp_backend,
        "batch": BATCH,
        "wall_seconds": round(seconds, 3),
        "wall_seconds_per_pairing": round(seconds / BATCH, 3),
        "budget_seconds": budget,
    })
