"""Compiler micro-benchmarks: compile time (the paper's minutes-not-days claim)
and raw pairing throughput of the golden library."""

import random

from repro.compiler.pipeline import clear_caches, compile_pairing
from repro.curves.catalog import get_curve
from repro.evaluation.common import bench_scale
from repro.pairing.ate import optimal_ate_pairing


def test_compile_time_bn254(benchmark):
    """End-to-end compile time for the BN254N kernel (paper: 8 s)."""
    curve = get_curve("TOY-BN42" if bench_scale() == "smoke" else "BN254N")

    def _compile():
        clear_caches()
        return compile_pairing(curve, use_cache=False)

    result = benchmark.pedantic(_compile, rounds=1, iterations=1)
    assert result.final_instructions > 10_000


def test_golden_pairing_latency_bn254(benchmark):
    """Latency of the golden (software) pairing used as the correctness oracle."""
    curve = get_curve("TOY-BN42" if bench_scale() == "smoke" else "BN254N")
    rng = random.Random(1)
    P = curve.random_g1(rng)
    Q = curve.random_g2(rng)
    value = benchmark(optimal_ate_pairing, curve, P, Q)
    assert curve.is_valid_gt(value)


def test_scheduler_throughput(benchmark):
    """Scheduling throughput on an already-lowered kernel (instructions/second)."""
    from repro.compiler.bankalloc import allocate_banks
    from repro.compiler.pipeline import _cached_optimized
    from repro.compiler.schedule import affinity_schedule
    from repro.fields.variants import VariantConfig
    from repro.hw.presets import paper_hw1

    curve = get_curve("TOY-BN42" if bench_scale() == "smoke" else "BN254N")
    module, _ = _cached_optimized(curve, VariantConfig.all_karatsuba(), True)
    hw = paper_hw1(curve.params.p.bit_length())
    banks = allocate_banks(module, hw)
    schedule = benchmark.pedantic(affinity_schedule, args=(module, hw, banks), rounds=1, iterations=1)
    assert schedule.instruction_count == module.count_compute_ops()
