"""Design-space exploration demo (the co-design loop of Section 3.6).

Explores operator-variant combinations across several hardware models for a
BLS24 curve, ranks the design points by throughput and by area efficiency, and
runs the ALU-family co-design sweep that picks the modular multiplier pipeline
depth (Figure 11).

Usage: ``python design_space_exploration.py [curve] [workers]`` -- pass a worker
count > 1 to shard the sweep across processes via the parallel engine; the
second objective pass is served entirely from the compile cache either way.
"""

import sys

from repro import get_curve
from repro.dse.codesign import alu_family_codesign, best_depth
from repro.dse.engine import ParallelExplorer
from repro.dse.space import design_points, named_variant_configs
from repro.hw.presets import figure10_models


def main() -> int:
    curve_name = sys.argv[1] if len(sys.argv) > 1 else "TOY-BLS24-79"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    curve = get_curve(curve_name)
    print(f"exploring the design space for {curve.name} (k log p = {curve.k * curve.p.bit_length()})")

    configs = list(named_variant_configs().values())
    hw_models = figure10_models(curve.p.bit_length())
    points = design_points(configs, hw_models)
    print(f"\n{len(points)} design points (variant combination x pipeline configuration)")
    with ParallelExplorer(curve, workers=workers) as explorer:
        for objective in ("throughput", "efficiency"):
            ranked = explorer.explore(points, objective=objective)
            print(f"\nbest designs by {objective}:")
            for metrics in ranked[:3]:
                print(f"  {metrics.describe()}")
            print(f"  [{explorer.last_report.describe()}]")

    print("\nALU-family co-design (modular multiplier pipeline depth):")
    records = alu_family_codesign(curve, long_latencies=(14, 20, 26, 32, 38))
    for record in records:
        print(f"  {record.describe()}")
    print("chosen depth:", best_depth(records).long_latency)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
