"""BLS short signatures on top of the pairing library (application of [3]).

Sign/verify a message with the Boneh-Lynn-Shacham scheme: the secret key is a
scalar, the public key lives in G2, signatures live in G1, and verification is
one pairing-product equation.  The example also shows the signature verifying on
the *compiled accelerator* (functional simulation of the generated kernel).
"""

import hashlib
import random

from repro import compile_pairing, get_curve, optimal_ate_pairing
from repro.sim.functional import FunctionalSimulator


def hash_to_g1(curve, message: bytes):
    """Hash a message to a G1 point (try-and-increment + cofactor clearing)."""
    counter = 0
    while True:
        digest = hashlib.sha256(message + counter.to_bytes(4, "big")).digest()
        x = curve.curve.field(int.from_bytes(digest, "big"))
        point = curve.curve.lift_x(x)
        if point is not None:
            point = point.scalar_mul(curve.cofactor_g1)
            if not point.is_infinity():
                return point
        counter += 1


def keygen(curve, rng):
    secret = rng.randrange(2, curve.r)
    public = curve.g2_generator.scalar_mul(secret)
    return secret, public


def sign(curve, secret: int, message: bytes):
    return hash_to_g1(curve, message).scalar_mul(secret)


def verify(curve, public, message: bytes, signature) -> bool:
    """Check e(sigma, g2) == e(H(m), pk)."""
    lhs = optimal_ate_pairing(curve, signature, curve.g2_generator)
    rhs = optimal_ate_pairing(curve, hash_to_g1(curve, message), public)
    return lhs == rhs


def verify_on_accelerator(curve, public, message: bytes, signature) -> bool:
    """The same verification, with both pairings executed by the compiled kernel."""
    result = compile_pairing(curve)
    simulator = FunctionalSimulator(result.program, curve.p)

    def pairing(P, Q):
        inputs = {}
        for name, value in (("xP", P.x), ("yP", P.y), ("xQ", Q.x), ("yQ", Q.y)):
            for j, coeff in enumerate(value.to_base_coeffs()):
                inputs[(name, j)] = coeff
        outputs = simulator.run(inputs).outputs
        return tuple(outputs[("result", j)] for j in range(curve.k))

    lhs = pairing(signature, curve.g2_generator)
    rhs = pairing(hash_to_g1(curve, message), public)
    return lhs == rhs


def main() -> int:
    curve = get_curve("TOY-BN42")
    rng = random.Random(99)
    secret, public = keygen(curve, rng)
    message = b"finesse: agile pairing accelerators"
    signature = sign(curve, secret, message)

    assert verify(curve, public, message, signature)
    assert not verify(curve, public, b"tampered message", signature)
    print("BLS signature verified in software")

    assert verify_on_accelerator(curve, public, message, signature)
    print("BLS signature verified on the simulated Finesse accelerator")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
