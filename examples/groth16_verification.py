"""Pairing-product verification in the style of Groth16 (application of [5]).

The intro of the paper motivates pairing accelerators with zero-knowledge proof
systems: a Groth16 verifier checks one pairing-product equation

    e(A, B) = e(alpha, beta) * e(C, delta)

This example builds a synthetic instance of that equation (choosing exponents so
that it holds by construction), verifies it with the golden pairing, then
re-verifies it with the batched ``multi_pairing`` API -- one shared Miller
accumulator and a single final exponentiation for the whole product, with the
fixed verifying-key G2 points precomputed -- and finally counts what the
verification costs on the compiled accelerator.
"""

import random

from repro import compile_pairing, get_curve, multi_pairing, optimal_ate_pairing, precompute_g2
from repro.hw.timing import frequency_mhz


def main() -> int:
    curve = get_curve("TOY-BN42")
    rng = random.Random(7)
    g1, g2 = curve.g1_generator, curve.g2_generator
    r = curve.r

    # Synthetic proof: pick alpha, beta, delta, c and set A, B so the equation holds:
    # a * b = alpha * beta + c * delta  (mod r).
    alpha, beta, delta, c = (rng.randrange(2, r) for _ in range(4))
    a = rng.randrange(2, r)
    b = ((alpha * beta + c * delta) * pow(a, -1, r)) % r

    A, B = g1.scalar_mul(a), g2.scalar_mul(b)
    alpha_g1, beta_g2 = g1.scalar_mul(alpha), g2.scalar_mul(beta)
    C, delta_g2 = g1.scalar_mul(c), g2.scalar_mul(delta)

    lhs = optimal_ate_pairing(curve, A, B)
    rhs = optimal_ate_pairing(curve, alpha_g1, beta_g2) * optimal_ate_pairing(curve, C, delta_g2)
    assert lhs == rhs
    print("Groth16-style pairing-product equation verified in software")

    # The same check, batched: the fixed verifying-key points beta and delta are
    # precomputed once, and the whole product needs a single final exponentiation.
    beta_pre, delta_pre = precompute_g2(curve, beta_g2), precompute_g2(curve, delta_g2)
    assert multi_pairing(curve, [(-A, B), (alpha_g1, beta_pre), (C, delta_pre)]).is_one()
    print("batched verification (multi_pairing, precomputed G2) agrees")

    # Split accumulators -- one independent Miller chain per group, merged
    # before the final exponentiation -- compute the identical product; this
    # is the partition the multi-core accelerator kernel runs one-per-core.
    assert multi_pairing(
        curve, [(-A, B), (alpha_g1, beta_pre), (C, delta_pre)], accumulators=2
    ).is_one()
    print("split-accumulator verification (accumulators=2) agrees")

    # A forged proof must fail.
    forged = optimal_ate_pairing(curve, g1.scalar_mul(a + 1), B)
    assert forged != rhs
    assert not multi_pairing(
        curve, [(-g1.scalar_mul(a + 1), B), (alpha_g1, beta_pre), (C, delta_pre)]
    ).is_one()
    print("forged proof correctly rejected")

    # Cost of the three pairings on the accelerator.
    result = compile_pairing(curve)
    freq = frequency_mhz(curve.p.bit_length(), result.hw.long_latency)
    per_pairing_us = result.cycles / freq
    print(
        f"accelerator cost: {result.cycles} cycles per pairing "
        f"({per_pairing_us:.1f} us at {freq:.0f} MHz); "
        f"verification needs 3 pairings ~= {3 * per_pairing_us:.1f} us on one core"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
