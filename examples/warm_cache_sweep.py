"""Warm-start a design-space sweep from the disk-backed compile artifact store.

Every process normally starts with a cold compile cache; with
``FINESSE_CACHE_DIR`` pointing at a shared directory, compile artefacts
persist on disk and a sweep re-run in a *fresh* process performs zero
recompilations -- every kernel is loaded from the store.  Run this script
twice to see the effect::

    python examples/warm_cache_sweep.py --cache-dir .finesse-cache     # cold: compiles
    python examples/warm_cache_sweep.py --cache-dir .finesse-cache     # warm: disk hits

CI uses the second invocation with ``--assert-warm``, which fails unless the
sweep was fully served from the store (``disk_hits > 0`` and zero
recompilations) -- the warm-path guarantee this repository advertises.
"""

from __future__ import annotations

import os
import sys

from repro.compiler.pipeline import compile_cache_stats
from repro.compiler.store import CACHE_DIR_ENV, active_store
from repro.curves.catalog import get_curve
from repro.dse.engine import ParallelExplorer, default_workers
from repro.dse.space import design_points, named_variant_configs
from repro.hw.presets import figure10_models


def main() -> int:
    args = list(sys.argv[1:])
    curve_name = "TOY-BN42"
    cache_dir = os.environ.get(CACHE_DIR_ENV, "") or ".finesse-cache"
    assert_warm = False
    while args:
        arg = args.pop(0)
        if arg == "--curve":
            curve_name = args.pop(0)
        elif arg == "--cache-dir":
            cache_dir = args.pop(0)
        elif arg == "--assert-warm":
            assert_warm = True
        else:
            raise SystemExit(f"unknown argument {arg!r}")

    # Export (rather than just configure) the store so that every DSE worker
    # process inherits it and the whole pool shares one artefact directory.
    os.environ[CACHE_DIR_ENV] = cache_dir

    curve = get_curve(curve_name)
    configs = list(named_variant_configs().values())
    hw_models = figure10_models(curve.params.p.bit_length())[:2]
    points = design_points(configs, hw_models)

    with ParallelExplorer(curve, workers=default_workers()) as engine:
        best = engine.best(points, objective="efficiency")
        report = engine.last_report

    print(f"swept {report.points} design points ({report.distinct_points} distinct) "
          f"on {curve.name} with {report.workers} worker(s)")
    print(f"best: {best.label} -- {best.cycles} cycles, "
          f"{best.throughput_per_mm2:.1f} ops/s/mm^2")
    print("sweep cache activity:", report.describe())

    stats = compile_cache_stats()
    recompilations = report.cache_stats.get("result", {}).get("misses", 0)
    disk_hits = report.cache_stats.get("disk", {}).get("hits", 0)
    store = active_store()
    if store is not None:
        print(f"store: {len(store)} artefacts, {store.total_bytes() / 1024:.0f} KiB "
              f"under {store.namespace}")
    print(f"this sweep: {recompilations} recompilation(s), {disk_hits} disk hit(s)")

    if assert_warm:
        if recompilations != 0 or disk_hits == 0:
            print("FAIL: expected a warm sweep (zero recompilations, disk_hits > 0); "
                  f"got {recompilations} recompilation(s) and {disk_hits} disk hit(s)",
                  file=sys.stderr)
            return 1
        print(f"warm path verified: {disk_hits} disk hit(s), zero recompilations")
    else:
        # Surface the full per-stage view on the populating run.
        print("process cache stats:", {name: s.get("hits", 0) for name, s in stats.items()})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
