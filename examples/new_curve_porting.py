"""Agility demo: port a brand-new pairing curve end-to-end in minutes.

This is the "For Pairing Researchers" scenario of Section 4.5: starting from
nothing but a target bit-width, the framework searches a fresh BLS12 seed,
instantiates the curve (tower, twist, generators, final-exponentiation plan),
verifies the pairing algebraically, and compiles + simulates an accelerator for
it -- no manual operator decomposition, scheduling or control-signal work.
"""

import random
import time

from repro.compiler.pipeline import compile_pairing
from repro.curves.catalog import CurveSpec, build_curve
from repro.curves.families import BLS12_FAMILY
from repro.curves.search import find_seed
from repro.pairing.ate import optimal_ate_pairing


def main() -> int:
    start = time.perf_counter()

    # 1. Find a fresh 16-bit seed for a small BLS12 curve (p around 90 bits).
    candidate = find_seed(BLS12_FAMILY, seed_bits=16, max_terms=4)
    print(f"found seed u = {candidate.u} = {candidate.describe()}")

    # 2. Instantiate the full curve: tower, twist selection, generators, plans.
    spec = CurveSpec("BLS12-custom", "BLS12", candidate.u, "searched by this example", toy=True)
    curve = build_curve(spec)
    print("curve:", curve.describe())

    # 3. Algebraic validation of the pairing on the new curve.
    rng = random.Random(1)
    P, Q = curve.random_g1(rng), curve.random_g2(rng)
    e = optimal_ate_pairing(curve, P, Q)
    a = rng.randrange(2, curve.r)
    assert optimal_ate_pairing(curve, P.scalar_mul(a), Q) == e ** a
    print("pairing on the new curve is bilinear and non-degenerate:", not e.is_one())

    # 4. Compile an accelerator for it and report the architectural feedback.
    result = compile_pairing(curve)
    print("accelerator feedback:", result.describe())

    print(f"total porting time: {time.perf_counter() - start:.1f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
