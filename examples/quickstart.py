"""Quickstart: compute a pairing, compile it to an accelerator, validate the binary.

Run with ``python examples/quickstart.py [curve-name]`` (default: TOY-BN42 so it
finishes in a couple of seconds; try BN254N for the paper's main test case).
"""

import random
import sys

from repro import compile_pairing, get_curve, optimal_ate_pairing
from repro.sim.functional import FunctionalSimulator


def main() -> int:
    curve_name = sys.argv[1] if len(sys.argv) > 1 else "TOY-BN42"
    curve = get_curve(curve_name)
    print(f"Curve {curve.name}: {curve.describe()}")

    # 1. Golden pairing and its algebraic sanity checks.
    rng = random.Random(2024)
    P = curve.random_g1(rng)
    Q = curve.random_g2(rng)
    e = optimal_ate_pairing(curve, P, Q)
    a, b = rng.randrange(2, curve.r), rng.randrange(2, curve.r)
    assert optimal_ate_pairing(curve, P.scalar_mul(a), Q.scalar_mul(b)) == e ** (a * b % curve.r)
    print("bilinearity check passed; e(P, Q) lies in G_T:", curve.is_valid_gt(e))

    # 2. Compile the same computation into an accelerator kernel.
    result = compile_pairing(curve, include_baseline=True)
    print("compile report:", result.describe())
    print("  baseline (unscheduled) IPC:", round(result.baseline_cycle_stats.ipc, 3))
    print("  first bundles of the binary:")
    print("\n".join("    " + line for line in result.program.disassemble(limit=5).splitlines()))

    # 3. Execute the binary on the functional simulator and compare with the golden value.
    inputs = {}
    for name, value in (("xP", P.x), ("yP", P.y), ("xQ", Q.x), ("yQ", Q.y)):
        for j, coeff in enumerate(value.to_base_coeffs()):
            inputs[(name, j)] = coeff
    outputs = FunctionalSimulator(result.program, curve.p).run(inputs).outputs
    simulated = [outputs[("result", j)] for j in range(curve.k)]
    assert simulated == e.to_base_coeffs()
    print("functional simulation of the compiled binary matches the golden pairing")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
