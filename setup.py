"""Setup script for the Finesse reproduction package.

A classic setuptools script (rather than a PEP 517 pyproject build) is used so
that ``pip install -e .`` works in fully offline environments where pip cannot
download build-isolation dependencies.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.9.0",
    description=(
        "Finesse reproduction: agile software/hardware co-design framework for "
        "pairing-based cryptography (Python functional model)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
        # Optional fast F_p backend (repro.fields.backends); auto-detected at
        # import, selectable via FINESSE_FP_BACKEND=gmpy2.  Never a hard
        # dependency: everything runs (slower) on the pure-Python backend.
        "fast": ["gmpy2>=2.1"],
    },
)
